#ifndef GLD_SIM_FRAME_SIM_H_
#define GLD_SIM_FRAME_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/round_circuit.h"
#include "codes/css_code.h"
#include "noise/noise_model.h"
#include "sim/leakage_driver.h"
#include "util/rng.h"

namespace gld {

/**
 * Pauli-frame backend: the paper's engine.
 *
 * The computational-subspace state is an X/Z Pauli frame relative to the
 * noiseless reference execution (exactly what a stabilizer frame sampler
 * computes for Pauli noise), so every primitive is O(1) bit arithmetic.
 * All leakage dynamics come from the shared LeakageDriver; this class only
 * says what the frame does under each primitive:
 *
 *  - measure_z reads the ancilla's X-frame bit (outcome flip vs the
 *    reference) without disturbing it;
 *  - park_leaked is a no-op — a leaked qubit's frame simply freezes (the
 *    driver routes no coherent gates at it) until an LRC clears the flag;
 *  - an LRC preserves the serviced qubit's frame (the gadget swaps the
 *    state back after the ancilla reset), so only gadget noise is added.
 */
class LeakFrameSim final : public LeakageDriverSim {
  public:
    LeakFrameSim(const CssCode& code, const RoundCircuit& rc,
                 const NoiseParams& np, uint64_t seed);

    std::string name() const override { return "frame"; }

  private:
    // --- StatePrimitives over the X/Z frame. ---
    void reset_state() override;
    void apply_pauli(int q, uint32_t pauli) override;
    void coherent_cnot(int control, int target) override;
    void hadamard(int q) override;
    void reset_z(int q) override;
    uint8_t measure_z(int q) override;
    void park_leaked(int q) override;

    std::vector<uint8_t> fx_;  ///< X-frame bit per qubit
    std::vector<uint8_t> fz_;  ///< Z-frame bit per qubit
};

}  // namespace gld

#endif  // GLD_SIM_FRAME_SIM_H_
