#include "sim/leakage_driver.h"

namespace gld {

LeakageDriver::LeakageDriver(const CssCode& code, const RoundCircuit& rc,
                             const NoiseParams& np, Rng noise_rng,
                             StatePrimitives* state)
    : code_(&code), rc_(&rc), np_(np), master_rng_(noise_rng),
      rng_(noise_rng.split(0)), state_(state)
{
    const int nq = code.n_qubits();
    leaked_.assign(static_cast<size_t>(nq), 0);
    prev_meas_.assign(static_cast<size_t>(code.n_checks()), 0);
    // Fixed LRC partner per data qubit: its first adjacent check's ancilla.
    // Identical across backends by construction, so LRC-induced leak flow
    // (the pump-in mechanism of §3.3) matches everywhere.
    lrc_partner_.assign(static_cast<size_t>(code.n_data()), -1);
    for (int q = 0; q < code.n_data(); ++q) {
        if (!code.data_adjacency()[q].empty())
            lrc_partner_[static_cast<size_t>(q)] =
                code.data_adjacency()[q].front();
    }
}

void
LeakageDriver::reset_shot()
{
    std::fill(leaked_.begin(), leaked_.end(), 0);
    std::fill(prev_meas_.begin(), prev_meas_.end(), 0);
    first_round_ = true;
    // Shot k draws from its own split of the master, so a shot's draw
    // sequence depends only on (master seed, k) — never on the draw count
    // of the shots before it.  The batch driver relies on this to replay
    // 64 shots in lockstep bit-identically (lane k == shot k).
    rng_ = master_rng_.split(shot_index_++);
    state_->reset_state();
}

void
LeakageDriver::reset_for_block(Rng noise_rng)
{
    // Mirror of the constructor's RNG state (master + split(0) current
    // stream, shot counter 0) plus an explicit backend-state reset — a
    // fresh driver gets a fresh backend for free, a reused one must
    // scrub whatever the previous block left.
    master_rng_ = noise_rng;
    rng_ = master_rng_.split(0);
    shot_index_ = 0;
    std::fill(leaked_.begin(), leaked_.end(), 0);
    std::fill(prev_meas_.begin(), prev_meas_.end(), 0);
    first_round_ = true;
    state_->reset_state();
}

void
LeakageDriver::set_leak(int q)
{
    if (leaked_[static_cast<size_t>(q)])
        return;
    leaked_[static_cast<size_t>(q)] = 1;
    state_->park_leaked(q);
}

int
LeakageDriver::n_data_leaked() const
{
    int n = 0;
    for (int q = 0; q < code_->n_data(); ++q)
        n += leaked_[static_cast<size_t>(q)];
    return n;
}

int
LeakageDriver::n_check_leaked() const
{
    int n = 0;
    for (int c = 0; c < code_->n_checks(); ++c)
        n += leaked_[static_cast<size_t>(code_->ancilla_of(c))];
    return n;
}

void
LeakageDriver::add_leak_occupancy(uint64_t* data_row, int n_data,
                                  uint64_t* check_row, int n_checks) const
{
    for (int q = 0; q < n_data; ++q)
        data_row[q] += leaked_[static_cast<size_t>(q)];
    for (int c = 0; c < n_checks; ++c)
        check_row[c] +=
            leaked_[static_cast<size_t>(code_->ancilla_of(c))];
}

void
LeakageDriver::depolarize1(int q)
{
    if (!rng_.bernoulli(np_.p))
        return;
    state_->apply_pauli(q, 1 + rng_.uniform_int(3));
}

void
LeakageDriver::depolarize2(int q0, int q1)
{
    if (!rng_.bernoulli(np_.p))
        return;
    // One of the 15 non-identity two-qubit Paulis, uniformly.
    const uint32_t pauli = 1 + rng_.uniform_int(15);
    state_->apply_pauli(q0, pauli & 3u);
    state_->apply_pauli(q1, (pauli >> 2) & 3u);
}

void
LeakageDriver::leak_maybe(int q)
{
    if (rng_.bernoulli(np_.pl()))
        set_leak(q);
}

void
LeakageDriver::cnot(int control, int target)
{
    const bool cl = leaked(control);
    const bool tl = leaked(target);
    if (!cl && !tl) {
        state_->coherent_cnot(control, target);
    } else if (cl && !tl) {
        // Leaked control: transport with prob `mobility` (the leakage
        // population moves to the target), else the gate malfunctions and
        // the target is disturbed (paper §2.3).
        if (rng_.bernoulli(np_.mobility)) {
            set_leak(target);
            clear_leak(control);
        } else {
            malfunction(target, /*is_control=*/false);
        }
    } else if (!cl && tl) {
        // Leaked target: the control is disturbed.
        malfunction(control, /*is_control=*/true);
    }
    // Both leaked: gate does nothing observable in the subspace.

    // Gate-induced depolarizing and leakage on both operands.
    depolarize2(control, target);
    leak_maybe(control);
    leak_maybe(target);
}

void
LeakageDriver::malfunction(int partner, bool is_control)
{
    const bool partner_is_ancilla = partner >= code_->n_data();
    if (partner_is_ancilla && !np_.leaked_gate_backaction) {
        // IBM characterization (§2.3): the malfunction manifests as an
        // independent 50% flip of the ancilla's measured bit.  A Z-check
        // ancilla (CNOT target) is measured in Z: flip via X.  An X-check
        // ancilla (CNOT control, conjugated by H) is measured in X between
        // its Hadamards: flip via Z.  Neither component propagates through
        // the ancilla's remaining CNOTs.
        if (rng_.bit())
            state_->apply_pauli(partner, is_control ? kPauliZ : kPauliX);
        return;
    }
    // Full back-action: a uniformly random Pauli on the partner.
    state_->apply_pauli(partner, rng_.uniform_int(4));
}

void
LeakageDriver::apply_lrc_data(int q)
{
    // SWAP with the partner ancilla + reset: exchanges the leak flags,
    // then the ancilla side is reset (cleared).  What happens to the
    // computational state is the backend's approximation — a frame
    // backend preserves the frame through the gadget (state swapped back
    // after the ancilla reset), an exact backend rejoins with the parked
    // collapsed state — but the flag dynamics are the driver's alone.
    const int pc = lrc_partner_[static_cast<size_t>(q)];
    if (pc >= 0) {
        const int anc = code_->ancilla_of(pc);
        const bool anc_was_leaked = leaked(anc);
        clear_leak(q);
        clear_leak(anc);
        if (anc_was_leaked)
            set_leak(q);  // false-positive LRC pumps the partner's leak IN
    } else {
        clear_leak(q);
    }
    // Gadget noise: ~3 CNOTs of depolarizing + leakage induction.
    if (rng_.bernoulli(np_.lrc_depol()))
        state_->apply_pauli(q, 1 + rng_.uniform_int(3));
    if (rng_.bernoulli(np_.lrc_leak()))
        set_leak(q);
}

void
LeakageDriver::apply_lrc_check(int c)
{
    const int anc = code_->ancilla_of(c);
    clear_leak(anc);
    state_->reset_z(anc);
    if (rng_.bernoulli(np_.lrc_leak()))
        set_leak(anc);
}

RoundResult
LeakageDriver::run_round(const LrcSchedule& lrcs)
{
    const int n_checks = code_->n_checks();
    RoundResult out;
    out.meas_flip.assign(static_cast<size_t>(n_checks), 0);
    out.detector.assign(static_cast<size_t>(n_checks), 0);
    out.mlr_flag.assign(static_cast<size_t>(n_checks), 0);

    // 1. Scheduled LRC gadgets (decided by the policy last round).
    for (int q : lrcs.data_qubits)
        apply_lrc_data(q);
    for (int c : lrcs.checks)
        apply_lrc_check(c);

    // 2. Round-start data noise: depolarization + environment leakage.
    for (int q = 0; q < code_->n_data(); ++q) {
        depolarize1(q);
        leak_maybe(q);
    }

    // 3. Execute the scheduled extraction circuit; gates skip leaked
    //    operands (their coherent action malfunctions instead).
    for (const Op& op : rc_->ops()) {
        switch (op.type) {
          case OpType::kResetZ:
            // Reset does not clear leakage, and a reset pulse has no
            // effect on a parked |2> state (no init-error draw either:
            // the draw sequence is leak-trajectory-dependent, identically
            // on every backend).
            if (!leaked(op.q0)) {
                state_->reset_z(op.q0);
                if (rng_.bernoulli(np_.p))
                    state_->apply_pauli(op.q0, kPauliX);  // flips to |1>
            }
            break;
          case OpType::kH:
            if (!leaked(op.q0))
                state_->hadamard(op.q0);
            depolarize1(op.q0);
            break;
          case OpType::kCnot:
            cnot(op.q0, op.q1);
            break;
          case OpType::kMeasure: {
            const int anc = op.q0;
            uint8_t flip;
            if (leaked(anc)) {
                // Two-level readout of a leaked qubit: random outcome.
                flip = rng_.bit() ? 1 : 0;
            } else {
                flip = state_->measure_z(anc);
                if (rng_.bernoulli(np_.p))
                    flip ^= 1;
            }
            out.meas_flip[static_cast<size_t>(op.mslot)] = flip;
            // MLR leak flag with symmetric misclassification.
            uint8_t leak_flag = leaked(anc) ? 1 : 0;
            if (rng_.bernoulli(np_.mlr_err()))
                leak_flag ^= 1;
            out.mlr_flag[static_cast<size_t>(op.mslot)] = leak_flag;
            break;
          }
        }
    }

    // 4. Detector bits.
    for (int c = 0; c < n_checks; ++c) {
        if (first_round_ && code_->check(c).type == CheckType::kX) {
            // Round-0 X-check outcomes are random projections in a Z-basis
            // memory; they carry no detector information.
            out.detector[static_cast<size_t>(c)] = 0;
        } else {
            out.detector[static_cast<size_t>(c)] =
                out.meas_flip[static_cast<size_t>(c)] ^
                prev_meas_[static_cast<size_t>(c)];
        }
    }
    prev_meas_ = out.meas_flip;
    first_round_ = false;
    return out;
}

std::vector<uint8_t>
LeakageDriver::final_data_measure()
{
    std::vector<uint8_t> flips(static_cast<size_t>(code_->n_data()), 0);
    for (int q = 0; q < code_->n_data(); ++q) {
        uint8_t flip;
        if (leaked(q)) {
            flip = rng_.bit() ? 1 : 0;
        } else {
            flip = state_->measure_z(q);
            if (rng_.bernoulli(np_.p))
                flip ^= 1;
        }
        flips[static_cast<size_t>(q)] = flip;
    }
    return flips;
}

}  // namespace gld
