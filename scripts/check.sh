#!/usr/bin/env bash
# Tier-1 verify: configure, build everything, run the fast deterministic
# test label.  This is the gate every PR must keep green — CI runs the
# same steps (.github/workflows/ci.yml).
#
# Usage:
#   scripts/check.sh          # tier1 labels only (fast, < 2 min)
#   scripts/check.sh --all    # every registered test, slow suites included
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
CTEST_ARGS=(-L tier1)
if [[ "${1:-}" == "--all" ]]; then
    CTEST_ARGS=()
fi

cmake -B build -S .
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}" "${CTEST_ARGS[@]}"
