#!/usr/bin/env bash
# Record backend throughput over time: runs the BM_BackendThroughput
# microbenchmark (shots/second per simulation backend, d=5 surface code,
# the bench/micro_speculation.cc configuration) and appends one record to
# BENCH_backend_throughput.json at the repo root — the committed
# trajectory a perf PR cites to prove its speedup and a regression hunt
# bisects over.
#
# Usage:
#   scripts/bench_record.sh              # run, append, git-commit the file
#   scripts/bench_record.sh --no-commit  # run and append only
#
# Each record: {git_rev, date, num_cpus, threads, min_time_s,
# shots_per_second: {frame: ..., batch_frame: ..., ...},
# chosen_batch_words, batch_width_sweep, multi_thread, scaling,
# stage_frac}.
#
#  - shots_per_second is each backend's BEST single-thread rate across
#    the swept batch widths K (K*64 lanes per scheduler block) — the
#    number the perf trajectory compares PR over PR.
#  - chosen_batch_words records WHICH K produced it per backend, and
#    batch_width_sweep keeps the full single-thread K sweep.
#  - multi_thread records the best multi-threaded point per backend
#    (threads + batch width + shots/s) so scheduler scaling is part of
#    the committed trajectory too.
#  - scaling records, per backend with a multi-thread row, the speedup
#    of its best multi-thread point over its best single-thread point
#    and the parallel efficiency (speedup / threads) — the number the
#    thread-scaling gate (scripts/bench_guard.py) watches: speedup < 1
#    means threads made the backend SLOWER.
#  - stage_frac comes from the telemetry side channel riding along the
#    benchmark (src/telemetry/) at the chosen K — where the wall time
#    went, not just how much of it there was.
#
# The file is a JSON array, oldest first.  Older records carry fewer
# fields (plain shots_per_second only) — readers must treat the new
# fields as optional.  Throughput is machine-dependent — compare records
# from the same host (num_cpus is recorded to make foreign records
# obvious).
#
# The recorder FAILS (and writes nothing) if any expected benchmark row
# or counter is absent: a partial trajectory point is worse than none,
# because the regression guard would read the gap as a crash-level
# regression or silently skip the comparison.
set -euo pipefail

cd "$(dirname "$0")/.."

COMMIT=1
if [[ "${1:-}" == "--no-commit" ]]; then
    COMMIT=0
fi

OUT_FILE="BENCH_backend_throughput.json"
BENCH_BIN="build/micro_speculation"
MIN_TIME="${GLD_BENCH_MIN_TIME:-0.5}"

if [[ ! -x "${BENCH_BIN}" ]]; then
    echo "error: ${BENCH_BIN} not built (cmake --build build -j)" >&2
    exit 1
fi

RAW="$(mktemp)"
trap 'rm -f "${RAW}"' EXIT
"${BENCH_BIN}" --benchmark_filter='BM_BackendThroughput' \
    --benchmark_format=json --benchmark_min_time="${MIN_TIME}" \
    > "${RAW}"

GIT_REV="$(git rev-parse --short HEAD)" \
MIN_TIME="${MIN_TIME}" \
python3 - "${RAW}" "${OUT_FILE}" <<'EOF'
import json
import os
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

results = {}
for b in raw.get("benchmarks", []):
    if b.get("run_type") != "iteration" or "label" not in b:
        continue
    if "items_per_second" not in b:
        sys.exit(f"error: row {b.get('name', '?')} has no items_per_second "
                 "counter — refusing to record a partial trajectory point")
    results[b["label"]] = b

# The full registration list of bench/micro_speculation.cc's
# BM_BackendThroughput.  Labels:
# backend[@w<K>][@t<threads>][@sparse][@ler], with the plain backend
# name at K=1/threads=1/lockstep so old records stay comparable.
# @sparse (event-driven noise sampling) and @ler (decode on) fold into
# the trajectory's backend KEY — they are different measurements, not
# points of the lockstep K sweep, and must never shadow it.
EXPECTED = [
    "frame", "frame@t8",
    "batch_frame", "batch_frame@w2", "batch_frame@w4", "batch_frame@w8",
    "batch_frame@t8", "batch_frame@w4@t8", "batch_frame@w8@t8",
    "batch_frame@sparse", "batch_frame@w8@sparse", "batch_frame@ler",
    "tableau", "batch_tableau", "batch_tableau@w4",
    "batch_tableau@sparse",
    "batch_tableau@t8", "batch_tableau@w4@t8",
]
missing = [l for l in EXPECTED if l not in results]
if missing:
    sys.exit("error: benchmark output is missing expected rows: "
             + ", ".join(missing)
             + " — refusing to record a partial trajectory point")


def parse_label(label):
    backend, words, threads = label.split("@")[0], 1, 1
    for part in label.split("@")[1:]:
        if part in ("sparse", "ler"):
            # Mode suffixes become part of the backend key: a sparse or
            # decode-on row is its own trajectory series, compared PR
            # over PR against itself (and, within one record, against
            # the plain lockstep rows it was measured beside).
            backend += "@" + part
        elif part.startswith("w"):
            words = int(part[1:])
        elif part.startswith("t"):
            threads = int(part[1:])
        else:
            sys.exit(f"error: unparseable label suffix '@{part}' in "
                     f"'{label}'")
    return backend, words, threads


# Best single-thread rate per backend across the K sweep, plus the best
# multi-threaded point per backend.
best_single = {}   # backend -> (words, shots/s, label)
sweep = {}         # backend -> {str(K): shots/s}
best_multi = {}    # backend -> {threads, batch_words, shots_per_second}
for label, b in sorted(results.items()):
    backend, words, threads = parse_label(label)
    sps = b["items_per_second"]
    if threads == 1:
        sweep.setdefault(backend, {})[str(words)] = round(sps, 1)
        if backend not in best_single or sps > best_single[backend][1]:
            best_single[backend] = (words, sps, label)
    else:
        prev = best_multi.get(backend)
        if prev is None or sps > prev["shots_per_second"]:
            best_multi[backend] = {
                "threads": threads,
                "batch_words": words,
                "shots_per_second": round(sps, 1),
            }

# Thread-scaling summary: how much the best multi-thread point buys over
# the same record's best single-thread point (same host, same build —
# no cross-record comparison).  speedup < 1.0 is the pathology this
# PR's pool removed: threads making the backend slower.
scaling = {}
for backend, multi in sorted(best_multi.items()):
    single_sps = best_single[backend][1]
    speedup = multi["shots_per_second"] / single_sps
    scaling[backend] = {
        "threads": multi["threads"],
        "speedup": round(speedup, 3),
        "efficiency": round(speedup / multi["threads"], 3),
    }

# Telemetry stage split at each backend's chosen K: fraction of worker
# wall time in sim / policy / decode / accounting (frac_* counters).
stage_frac = {}
for backend, (words, _, label) in best_single.items():
    frac = {
        k[len("frac_"):]: round(v, 4)
        for k, v in sorted(results[label].items())
        if k.startswith("frac_")
    }
    if not frac:
        sys.exit(f"error: row '{label}' is missing its telemetry frac_* "
                 "counters — refusing to record a partial trajectory point")
    stage_frac[backend] = frac

record = {
    "git_rev": os.environ["GIT_REV"],
    "date": raw["context"]["date"],
    "num_cpus": raw["context"]["num_cpus"],
    # shots_per_second below is single-threaded (the backend's own rate,
    # not the scheduler's); the multi_thread section carries the scaled
    # points.
    "threads": 1,
    "min_time_s": float(os.environ["MIN_TIME"]),
    "shots_per_second": {
        backend: round(sps, 1)
        for backend, (_, sps, _label) in sorted(best_single.items())
    },
    "chosen_batch_words": {
        backend: words
        for backend, (words, _, _label) in sorted(best_single.items())
    },
    "batch_width_sweep": sweep,
    "multi_thread": best_multi,
    "scaling": scaling,
    "stage_frac": stage_frac,
}

history = []
if os.path.exists(out_path):
    with open(out_path) as f:
        history = json.load(f)
history.append(record)
with open(out_path, "w") as f:
    json.dump(history, f, indent=2)
    f.write("\n")

per_backend = ", ".join(
    f"{k}: {v:,.0f} (K={record['chosen_batch_words'][k]})"
    for k, v in record["shots_per_second"].items())
print(f"recorded {record['git_rev']} — single-thread shots/s "
      f"{{{per_backend}}}")
EOF

if [[ "${COMMIT}" == "1" ]]; then
    git add "${OUT_FILE}"
    git commit -m "Record backend throughput at $(git rev-parse --short HEAD)" \
        -- "${OUT_FILE}"
fi
