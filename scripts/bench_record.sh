#!/usr/bin/env bash
# Record backend throughput over time: runs the BM_BackendThroughput
# microbenchmark (shots/second per simulation backend, d=5 surface code,
# the bench/micro_speculation.cc configuration) and appends one record to
# BENCH_backend_throughput.json at the repo root — the committed
# trajectory a perf PR cites to prove its speedup and a regression hunt
# bisects over.
#
# Usage:
#   scripts/bench_record.sh              # run, append, git-commit the file
#   scripts/bench_record.sh --no-commit  # run and append only
#
# Each record: {git_rev, date, num_cpus, threads, min_time_s,
# shots_per_second: {frame: ..., batch_frame: ...}, stage_frac: {frame:
# {sim: ..., policy: ..., decode: ..., accounting: ...}, ...}}.  The
# stage fractions come from the telemetry side channel riding along the
# benchmark (src/telemetry/) — where the wall time went, not just how
# much of it there was.  The file is a JSON array, oldest first.
# Throughput is machine-dependent — compare records from the same host
# (num_cpus is recorded to make foreign records obvious).
set -euo pipefail

cd "$(dirname "$0")/.."

COMMIT=1
if [[ "${1:-}" == "--no-commit" ]]; then
    COMMIT=0
fi

OUT_FILE="BENCH_backend_throughput.json"
BENCH_BIN="build/micro_speculation"
MIN_TIME="${GLD_BENCH_MIN_TIME:-0.5}"

if [[ ! -x "${BENCH_BIN}" ]]; then
    echo "error: ${BENCH_BIN} not built (cmake --build build -j)" >&2
    exit 1
fi

RAW="$(mktemp)"
trap 'rm -f "${RAW}"' EXIT
"${BENCH_BIN}" --benchmark_filter='BM_BackendThroughput' \
    --benchmark_format=json --benchmark_min_time="${MIN_TIME}" \
    > "${RAW}"

GIT_REV="$(git rev-parse --short HEAD)" \
MIN_TIME="${MIN_TIME}" \
python3 - "${RAW}" "${OUT_FILE}" <<'EOF'
import json
import os
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

results = [
    b for b in raw["benchmarks"]
    if b.get("run_type") == "iteration" and "label" in b
]
record = {
    "git_rev": os.environ["GIT_REV"],
    "date": raw["context"]["date"],
    "num_cpus": raw["context"]["num_cpus"],
    # The benchmark config's worker thread count (bench/micro_speculation
    # .cc pins 1 so the ratio is the backend's, not the scheduler's).
    "threads": 1,
    "min_time_s": float(os.environ["MIN_TIME"]),
    "shots_per_second": {
        b["label"]: round(b["items_per_second"], 1) for b in results
    },
    # Telemetry stage split per backend: fraction of worker wall time in
    # sim / policy / decode / accounting (frac_* counters).
    "stage_frac": {
        b["label"]: {
            k[len("frac_"):]: round(v, 4)
            for k, v in sorted(b.items())
            if k.startswith("frac_")
        }
        for b in results
    },
}
if not record["shots_per_second"]:
    sys.exit("error: no BM_BackendThroughput results in benchmark output")

history = []
if os.path.exists(out_path):
    with open(out_path) as f:
        history = json.load(f)
history.append(record)
with open(out_path, "w") as f:
    json.dump(history, f, indent=2)
    f.write("\n")

per_backend = ", ".join(
    f"{k}: {v:,.0f}" for k, v in record["shots_per_second"].items())
print(f"recorded {record['git_rev']} — shots/s {{{per_backend}}}")
EOF

if [[ "${COMMIT}" == "1" ]]; then
    git add "${OUT_FILE}"
    git commit -m "Record backend throughput at $(git rev-parse --short HEAD)" \
        -- "${OUT_FILE}"
fi
