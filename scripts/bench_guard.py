#!/usr/bin/env python3
"""Warn-only perf guard over the committed throughput trajectory.

Compares the two most recent records of BENCH_backend_throughput.json
(see scripts/bench_record.sh) per backend and emits a GitHub Actions
``::warning::`` annotation for every backend whose single-thread
shots/second dropped by more than the threshold (default 20%).

Additionally checks two gates WITHIN the latest record (same host, same
build, so no cross-host caveat applies):

 - thread scaling: for every backend carrying a multi-thread point, its
   best multi-thread rate must beat its own best single-thread rate — a
   speedup <= 1.0 means the scheduler is burning threads to go slower,
   the exact pathology the persistent worker pool exists to prevent;
 - K sweep: for every backend with a batch-width sweep, the best K>1
   row must beat the K=1 row — otherwise the wide lanes are pure
   working-set overhead on this host and chosen_batch_words silently
   collapses to 1.

Deliberately NON-FATAL: microbenchmark numbers are machine-dependent
(records carry num_cpus so foreign-host comparisons are obvious) and a
red CI lane for a noisy 20% would teach people to ignore it.  The guard
exists to make a real regression loud in the PR annotations, not to
block the merge — always exits 0.

Usage: scripts/bench_guard.py [trajectory.json] [--threshold 0.20]
"""

import argparse
import json
import sys


def check_scaling(record) -> None:
    """Warn when a backend's best multi-thread point in `record` fails to
    beat its own best single-thread point.  Older records predate the
    multi_thread section — silently nothing to check then."""
    rev = record.get("git_rev", "?")
    single = record.get("shots_per_second", {})
    multi = record.get("multi_thread", {})
    for backend in sorted(multi):
        if backend not in single or float(single[backend]) <= 0:
            continue
        m = multi[backend]
        speedup = float(m["shots_per_second"]) / float(single[backend])
        eff = speedup / m["threads"] if m.get("threads") else 0.0
        print(f"bench guard: {backend:14s} scaling x{speedup:.2f} at "
              f"{m.get('threads', '?')} threads "
              f"(efficiency {eff * 100:.0f}%)")
        if speedup <= 1.0:
            print(f"::warning::bench guard: {backend} at "
                  f"{m.get('threads', '?')} threads is no faster than "
                  f"single-threaded in {rev} "
                  f"({float(m['shots_per_second']):,.0f} vs "
                  f"{float(single[backend]):,.0f} shots/s) — thread "
                  "scaling gate failed")


def check_k_sweep(record) -> None:
    """Warn when a backend's best swept batch width K>1 loses to its own
    K=1 row within `record`: the K-word lanes exist to BUY throughput,
    so a sweep where every wide row is slower than K=1 means the extra
    width only grows the per-round working set (and the trajectory's
    chosen_batch_words quietly collapses to 1).  Older records predate
    batch_width_sweep — silently nothing to check then."""
    rev = record.get("git_rev", "?")
    for backend, sweep in sorted(record.get("batch_width_sweep", {}).items()):
        if "1" not in sweep or len(sweep) < 2:
            continue
        base = float(sweep["1"])
        if base <= 0:
            continue
        wide = {int(k): float(v) for k, v in sweep.items() if k != "1"}
        best_k = max(wide, key=wide.get)
        print(f"bench guard: {backend:14s} K sweep best wide K={best_k} "
              f"{wide[best_k]:12,.0f} vs K=1 {base:12,.0f} shots/s "
              f"(x{wide[best_k] / base:.2f})")
        if wide[best_k] < base:
            print(f"::warning::bench guard: {backend} best swept batch "
                  f"width (K={best_k}, {wide[best_k]:,.0f} shots/s) loses "
                  f"to its own K=1 row ({base:,.0f} shots/s) in {rev} — "
                  "wide lanes are pure overhead on this host")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trajectory", nargs="?",
                    default="BENCH_backend_throughput.json")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="fractional single-thread drop that warns "
                         "(default 0.20)")
    args = ap.parse_args()

    try:
        with open(args.trajectory) as f:
            history = json.load(f)
    except (OSError, ValueError) as e:
        print(f"::warning::bench guard: cannot read {args.trajectory}: {e}")
        return 0

    if not isinstance(history, list) or not history:
        print(f"bench guard: no records in {args.trajectory}; "
              "nothing to check")
        return 0

    # Thread-scaling and K-sweep gates: within the LATEST record only,
    # so they apply even on a fresh host with no comparable prior record.
    check_scaling(history[-1])
    check_k_sweep(history[-1])

    if len(history) < 2:
        print(f"bench guard: fewer than two records in {args.trajectory}; "
              "no trajectory to compare")
        return 0

    prev, cur = history[-2], history[-1]
    prev_sps = prev.get("shots_per_second", {})
    cur_sps = cur.get("shots_per_second", {})
    if prev.get("num_cpus") != cur.get("num_cpus"):
        print(f"bench guard: records {prev.get('git_rev')} and "
              f"{cur.get('git_rev')} come from different hosts "
              f"(num_cpus {prev.get('num_cpus')} vs {cur.get('num_cpus')}); "
              "comparison would be meaningless, skipping")
        return 0

    warned = 0
    for backend in sorted(prev_sps):
        if backend not in cur_sps:
            print(f"::warning::bench guard: backend '{backend}' present in "
                  f"{prev.get('git_rev')} is missing from "
                  f"{cur.get('git_rev')}")
            warned += 1
            continue
        before, after = float(prev_sps[backend]), float(cur_sps[backend])
        if before <= 0:
            continue
        drop = (before - after) / before
        arrow = "-" if drop >= 0 else "+"
        print(f"bench guard: {backend:14s} {before:12,.0f} -> "
              f"{after:12,.0f} shots/s ({arrow}{abs(drop) * 100:.1f}%)")
        if drop > args.threshold:
            print(f"::warning::bench guard: {backend} single-thread "
                  f"throughput regressed {drop * 100:.1f}% "
                  f"({before:,.0f} -> {after:,.0f} shots/s, "
                  f"{prev.get('git_rev')} -> {cur.get('git_rev')}, "
                  f"threshold {args.threshold * 100:.0f}%)")
            warned += 1
    for backend in sorted(set(cur_sps) - set(prev_sps)):
        print(f"bench guard: {backend} is new in {cur.get('git_rev')} "
              f"({float(cur_sps[backend]):,.0f} shots/s); no baseline")

    if warned == 0:
        print("bench guard: no single-thread regression beyond "
              f"{args.threshold * 100:.0f}%")
    # Warn-only by design: see module docstring.
    return 0


if __name__ == "__main__":
    sys.exit(main())
