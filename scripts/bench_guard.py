#!/usr/bin/env python3
"""Warn-only perf guard over the committed throughput trajectory.

Compares the two most recent records of BENCH_backend_throughput.json
(see scripts/bench_record.sh) per backend and emits a GitHub Actions
``::warning::`` annotation for every backend whose single-thread
shots/second dropped by more than the threshold (default 20%).

Deliberately NON-FATAL: microbenchmark numbers are machine-dependent
(records carry num_cpus so foreign-host comparisons are obvious) and a
red CI lane for a noisy 20% would teach people to ignore it.  The guard
exists to make a real regression loud in the PR annotations, not to
block the merge — always exits 0.

Usage: scripts/bench_guard.py [trajectory.json] [--threshold 0.20]
"""

import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trajectory", nargs="?",
                    default="BENCH_backend_throughput.json")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="fractional single-thread drop that warns "
                         "(default 0.20)")
    args = ap.parse_args()

    try:
        with open(args.trajectory) as f:
            history = json.load(f)
    except (OSError, ValueError) as e:
        print(f"::warning::bench guard: cannot read {args.trajectory}: {e}")
        return 0

    if not isinstance(history, list) or len(history) < 2:
        print(f"bench guard: fewer than two records in {args.trajectory}; "
              "nothing to compare")
        return 0

    prev, cur = history[-2], history[-1]
    prev_sps = prev.get("shots_per_second", {})
    cur_sps = cur.get("shots_per_second", {})
    if prev.get("num_cpus") != cur.get("num_cpus"):
        print(f"bench guard: records {prev.get('git_rev')} and "
              f"{cur.get('git_rev')} come from different hosts "
              f"(num_cpus {prev.get('num_cpus')} vs {cur.get('num_cpus')}); "
              "comparison would be meaningless, skipping")
        return 0

    warned = 0
    for backend in sorted(prev_sps):
        if backend not in cur_sps:
            print(f"::warning::bench guard: backend '{backend}' present in "
                  f"{prev.get('git_rev')} is missing from "
                  f"{cur.get('git_rev')}")
            warned += 1
            continue
        before, after = float(prev_sps[backend]), float(cur_sps[backend])
        if before <= 0:
            continue
        drop = (before - after) / before
        arrow = "-" if drop >= 0 else "+"
        print(f"bench guard: {backend:14s} {before:12,.0f} -> "
              f"{after:12,.0f} shots/s ({arrow}{abs(drop) * 100:.1f}%)")
        if drop > args.threshold:
            print(f"::warning::bench guard: {backend} single-thread "
                  f"throughput regressed {drop * 100:.1f}% "
                  f"({before:,.0f} -> {after:,.0f} shots/s, "
                  f"{prev.get('git_rev')} -> {cur.get('git_rev')}, "
                  f"threshold {args.threshold * 100:.0f}%)")
            warned += 1
    for backend in sorted(set(cur_sps) - set(prev_sps)):
        print(f"bench guard: {backend} is new in {cur.get('git_rev')} "
              f"({float(cur_sps[backend]):,.0f} shots/s); no baseline")

    if warned == 0:
        print("bench guard: no single-thread regression beyond "
              f"{args.threshold * 100:.0f}%")
    # Warn-only by design: see module docstring.
    return 0


if __name__ == "__main__":
    sys.exit(main())
